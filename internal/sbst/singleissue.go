package sbst

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Single-issue-oriented forwarding test, in the style of Psarakis et al.,
// "Systematic software-based self-test for pipelined processors" (DAC
// 2006 — the paper's reference [18]). The paper chose the dual-issue
// algorithm of [19] instead, because a test written against a scalar
// pipeline model exercises dependencies only at instruction distance 1 and
// 2 in a *single* stream: on a dual-issue machine both producer and
// consumer fall into packets without any control over lanes, so the
// interpipeline (cascade) path and the lane-crossing bypass combinations
// are hit only by accident. This generator exists as that baseline: same
// patterns, same MISR observation, no packet discipline.
func NewForwardingTestSingleIssue(dataBase uint32) *Routine {
	r := &Routine{
		Name:     "forwarding-si",
		Target:   "forwarding",
		DataBase: dataBase,
	}
	for _, p := range fwdPatterns {
		r.DataWords = append(r.DataWords, p, ^p)
	}
	r.ScratchBytes = 96

	r.Blocks = append(r.Blocks, RegInitBlock())
	for i := range fwdPatterns {
		idx := i
		r.Blocks = append(r.Blocks, Block{
			Name: fmt.Sprintf("si-pattern%d", idx),
			Emit: func(b *asm.Builder) { emitSingleIssueGroup(b, idx) },
		})
	}
	return r
}

// emitSingleIssueGroup drives a pattern through distance-1 and distance-2
// dependencies the way a scalar-pipeline test would: one linear chain,
// no filler instructions to steer lanes or packets.
func emitSingleIssueGroup(b *asm.Builder, idx int) {
	off := int32(idx * 8)
	b.Load(isa.OpLW, fwdP, isa.RegBase, off)
	b.Load(isa.OpLW, fwdN, isa.RegBase, off+4)
	b.Nop()
	b.Nop()

	// Distance 1: producer immediately followed by consumer (on a scalar
	// 5-stage pipe this is the EX-to-EX bypass; on the dual-issue core it
	// lands on the cascade or EXL0 path depending on packet formation).
	b.R(isa.OpOR, fwdT0, fwdP, isa.RegZero)
	b.R(isa.OpADD, fwdC0, fwdT0, fwdT0)
	b.Misr(fwdC0)
	b.R(isa.OpOR, fwdT1, fwdN, isa.RegZero)
	b.R(isa.OpSUB, fwdC0, fwdT1, fwdP)
	b.Misr(fwdC0)

	// Distance 2: one unrelated instruction between producer and consumer.
	b.R(isa.OpOR, fwdT0, fwdN, isa.RegZero)
	b.Nop()
	b.R(isa.OpXOR, fwdC0, fwdT0, fwdP)
	b.Misr(fwdC0)

	// Load-to-use at distance 1 and 2.
	b.Load(isa.OpLW, fwdT0, isa.RegBase, off)
	b.R(isa.OpADD, fwdC0, fwdT0, fwdT0)
	b.Misr(fwdC0)
	b.Load(isa.OpLW, fwdT1, isa.RegBase, off+4)
	b.Nop()
	b.R(isa.OpXOR, fwdC0, fwdT1, fwdN)
	b.Misr(fwdC0)

	// Store/load-back.
	b.Store(isa.OpSW, fwdP, isa.RegBase, int32(len(fwdPatterns)*8)+off)
	b.Load(isa.OpLW, fwdT0, isa.RegBase, int32(len(fwdPatterns)*8)+off)
	b.Nop()
	b.R(isa.OpADD, fwdC0, fwdT0, fwdT0)
	b.Misr(fwdC0)
}
