package sbst

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

const testDataBase = mem.SRAMBase + 0x1000

// assemblePlain checks a routine assembles standalone.
func assemblePlain(t *testing.T, r *Routine) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	r.EmitPlain(b)
	b.Halt()
	p, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatalf("%s: %v", r.Name, err)
	}
	return p
}

func allRoutines() []*Routine {
	return []*Routine{
		NewForwardingTest(ForwardingOptions{DataBase: testDataBase}),
		NewForwardingTest(ForwardingOptions{DataBase: testDataBase, WithPerfCounters: true}),
		NewForwardingTest(ForwardingOptions{DataBase: testDataBase, Pairs64: true}),
		NewForwardingTest(ForwardingOptions{DataBase: testDataBase, DummyLoadAfterStore: true}),
		NewHDCUTest(HDCUOptions{DataBase: testDataBase}),
		NewICUTest(ICUOptions{DataBase: testDataBase}),
		NewICUTest(ICUOptions{DataBase: testDataBase, TriggerReps: 2}),
		NewALUTest(testDataBase),
		NewShiftTest(testDataBase),
		NewMulTest(testDataBase),
		NewLoadStoreTest(testDataBase),
		NewBranchTest(testDataBase),
	}
}

func TestAllRoutinesAssemble(t *testing.T) {
	for _, r := range allRoutines() {
		p := assemblePlain(t, r)
		if p.Size() == 0 {
			t.Errorf("%s: empty program", r.Name)
		}
		size, err := r.SizeBytes()
		if err != nil {
			t.Errorf("%s: SizeBytes: %v", r.Name, err)
		}
		if size <= 0 {
			t.Errorf("%s: size %d", r.Name, size)
		}
		t.Logf("%-12s %5d bytes, %2d blocks, data %d bytes",
			r.Name, size, len(r.Blocks), r.DataSize())
	}
}

func TestBlocksAreIndividuallyAssemblable(t *testing.T) {
	// The cache strategy's splitter sizes blocks standalone; every block of
	// a splittable routine must assemble in isolation.
	for _, r := range allRoutines() {
		if r.NoSplit {
			continue
		}
		for _, blk := range r.Blocks {
			b := asm.NewBuilder()
			blk.Emit(b)
			if _, err := b.Assemble(0); err != nil {
				t.Errorf("%s/%s: %v", r.Name, blk.Name, err)
			}
		}
	}
}

func TestRoutinesRespectRegisterConventions(t *testing.T) {
	// Routines must not write the wrapper's loop counter (r30) or the base
	// pointer (r29).
	for _, r := range allRoutines() {
		b := asm.NewBuilder()
		r.EmitBody(b)
		p, err := b.Assemble(0)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		for i, w := range p.Words {
			inst, err := isa.Decode(w)
			if err != nil {
				continue // data words
			}
			if !inst.WritesReg() {
				continue
			}
			rd := inst.Rd
			if inst.Op == isa.OpJAL {
				rd = isa.RegLink
			}
			if rd == isa.RegLoop || rd == isa.RegBase {
				t.Errorf("%s word %d: %v writes reserved register", r.Name, i, inst)
			}
		}
	}
}

func TestForwardingRoutineStoresHaveDummyLoads(t *testing.T) {
	r := NewForwardingTest(ForwardingOptions{DataBase: testDataBase, DummyLoadAfterStore: true})
	b := asm.NewBuilder()
	r.EmitBody(b)
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	// Every store must be followed within a few instructions by a load of
	// the same base+offset.
	insts := make([]isa.Inst, 0, len(p.Words))
	for _, w := range p.Words {
		if inst, err := isa.Decode(w); err == nil {
			insts = append(insts, inst)
		}
	}
	for i, inst := range insts {
		if !inst.Op.IsStore() {
			continue
		}
		found := false
		for k := i + 1; k < i+6 && k < len(insts); k++ {
			cand := insts[k]
			if cand.Op.IsLoad() && cand.Rs1 == inst.Rs1 && cand.Imm == inst.Imm {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("store at %d (%v) lacks a dummy load", i, inst)
		}
	}
}

func TestICURoutineIsNoSplit(t *testing.T) {
	r := NewICUTest(ICUOptions{DataBase: testDataBase})
	if !r.NoSplit {
		t.Error("ICU routine must be NoSplit (handler is cross-referenced)")
	}
	if !r.UsesInterrupts {
		t.Error("UsesInterrupts flag unset")
	}
}

func TestMisrReferenceProperties(t *testing.T) {
	// Misr must be sensitive to every bit of its input: flipping any bit of
	// v changes the result.
	prop := func(sig, v uint32, bit uint8) bool {
		bit %= 32
		return Misr(sig, v) != Misr(sig, v^(1<<bit))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// And to history: two streams differing in one element diverge.
	if MisrStream(1, 2, 3) == MisrStream(1, 2, 4) {
		t.Error("MISR insensitive to last element")
	}
	if MisrStream(1, 2, 3) == MisrStream(2, 1, 3) {
		t.Error("MISR insensitive to order")
	}
}

func TestStandardSTLDistinctDataAreas(t *testing.T) {
	lib := StandardSTL(testDataBase)
	if len(lib) < 5 {
		t.Fatalf("library has %d routines", len(lib))
	}
	seen := map[uint32]string{}
	for _, r := range lib {
		if prev, dup := seen[r.DataBase]; dup {
			t.Errorf("%s and %s share data base %#x", prev, r.Name, r.DataBase)
		}
		seen[r.DataBase] = r.Name
	}
}

func TestRegInitBlockCoversOperandWindow(t *testing.T) {
	b := asm.NewBuilder()
	RegInitBlock().Emit(b)
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	written := map[uint8]bool{}
	for _, w := range p.Words {
		inst, err := isa.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		written[inst.Rd] = true
	}
	for reg := uint8(1); reg <= 22; reg++ {
		if !written[reg] {
			t.Errorf("r%d not initialised", reg)
		}
	}
}
