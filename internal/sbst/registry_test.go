package sbst

import (
	"strings"
	"testing"
)

func TestRoutineRegistry(t *testing.T) {
	for _, name := range RoutineNames() {
		r, err := NewRoutineByName(name, RoutineOptions{DataBase: 0x2000_2000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.DataBase != 0x2000_2000 {
			t.Errorf("%s: DataBase not honoured (%#x)", name, r.DataBase)
		}
		if _, err := r.SizeBytes(); err != nil {
			t.Errorf("%s: does not assemble: %v", name, err)
		}
	}
	if _, err := NewRoutineByName("nope", RoutineOptions{}); err == nil {
		t.Error("unknown routine accepted")
	} else if !strings.Contains(err.Error(), "forwarding") {
		t.Errorf("error does not list known names: %v", err)
	}

	// CoreID selects the 64-bit forwarding variant: core C's routine emits
	// pair patterns, so it must be larger than core A's.
	a, _ := NewRoutineByName("forwarding", RoutineOptions{DataBase: 0x2000_2000, CoreID: 0})
	c, _ := NewRoutineByName("forwarding", RoutineOptions{DataBase: 0x2000_2000, CoreID: 2})
	sa, _ := a.SizeBytes()
	sc, _ := c.SizeBytes()
	if sc <= sa {
		t.Errorf("core C forwarding routine (%d bytes) not larger than core A's (%d)", sc, sa)
	}
}
