package sbst

import (
	"fmt"
	"math/bits"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Block is an atomic fragment of a routine body: the wrapping strategies
// may split a routine between blocks (when it exceeds the I-cache) but
// never inside one. Emit must produce straight-line code or loops that are
// fully contained in the block; any labels must come from b.AutoLabel.
type Block struct {
	Name string
	Emit func(b *asm.Builder)
}

// Routine is one self-test procedure in single-core form (the paper's
// Figure 2a: blocks b and c).
type Routine struct {
	Name   string
	Target string // module under test, e.g. "forwarding", "hdcu", "icu"

	// DataBase is the address of the routine's pattern table and scratch
	// area; DataWords is the table's initial contents (written to memory
	// by the loader before the run) and ScratchBytes the extra room the
	// routine stores into beyond the table.
	DataBase     uint32
	DataWords    []uint32
	ScratchBytes int

	UsesPerfCounters bool
	UsesInterrupts   bool

	// NoSplit forbids chunking: the routine's blocks reference each other
	// (e.g. the ICU routine's handler), so all of it must be cache-resident
	// at once.
	NoSplit bool

	Blocks []Block
}

// DataSize returns the total data footprint in bytes.
func (r *Routine) DataSize() int { return len(r.DataWords)*4 + r.ScratchBytes }

// EmitPrologue emits the per-chunk setup: the data base pointer. The
// signature reset is separate because it must happen exactly once per
// routine (not per chunk).
func (r *Routine) EmitPrologue(b *asm.Builder) {
	b.Li(isa.RegBase, r.DataBase)
}

// EmitSigReset zeroes the signature register.
func (r *Routine) EmitSigReset(b *asm.Builder) {
	b.R(isa.OpXOR, isa.RegSig, isa.RegSig, isa.RegSig)
}

// EmitBody emits every block in order (single-chunk form).
func (r *Routine) EmitBody(b *asm.Builder) {
	for _, blk := range r.Blocks {
		blk.Emit(b)
	}
}

// EmitPlain emits the complete single-core routine: signature reset,
// prologue, body. No HALT — callers decide how the program ends.
func (r *Routine) EmitPlain(b *asm.Builder) {
	r.EmitSigReset(b)
	r.EmitPrologue(b)
	r.EmitBody(b)
}

// SizeBytes returns the assembled size of the plain form (prologue + body),
// used by the strategies to decide whether the routine fits a cache.
func (r *Routine) SizeBytes() (int, error) {
	b := asm.NewBuilder()
	r.EmitPlain(b)
	p, err := b.Assemble(0)
	if err != nil {
		return 0, err
	}
	return p.Size(), nil
}

// Repeat returns a variant of r whose body executes reps times inside a
// counted loop (identical control flow on every execution, so it remains
// compatible with the cache-based strategy). Real STL routines iterate
// their pattern sweeps; repetition also shifts a routine from fetch-bound
// to compute-bound once its code is cache- or TCM-resident. The loop
// counter uses the link register, so r must not use r31; the result is a
// single atomic block (NoSplit).
func Repeat(r *Routine, reps int) *Routine {
	if reps <= 1 {
		return r
	}
	cp := *r
	cp.Name = fmt.Sprintf("%s(x%d)", r.Name, reps)
	cp.NoSplit = true
	inner := r.Blocks
	cp.Blocks = []Block{{
		Name: "repeat",
		Emit: func(b *asm.Builder) {
			b.I(isa.OpADDI, isa.RegLink, isa.RegZero, int32(reps))
			top := b.AutoLabel("rep")
			b.Label(top)
			for _, blk := range inner {
				blk.Emit(b)
			}
			b.I(isa.OpADDI, isa.RegLink, isa.RegLink, -1)
			b.Branch(isa.OpBNE, isa.RegLink, isa.RegZero, top)
		},
	}}
	return &cp
}

// RegInitBlock returns a block that loads every operand register
// (r1..r22) with a distinct constant. Routines must start with it so no
// later fold can observe state left behind by whatever ran before the body
// — a classic STL rule: a self-test signature may only depend on values
// the routine itself produced.
func RegInitBlock() Block {
	return Block{Name: "reginit", Emit: func(b *asm.Builder) {
		for reg := uint8(1); reg <= 22; reg++ {
			b.I(isa.OpADDI, reg, isa.RegZero, int32(reg)*0x101)
		}
	}}
}

// Misr is the Go-side reference model of the software MISR the routines
// compute with asm.Builder.Misr: sig' = (sig rotl 1) XOR v.
func Misr(sig, v uint32) uint32 { return bits.RotateLeft32(sig, 1) ^ v }

// MisrStream folds a value stream into a signature starting from zero.
func MisrStream(vals ...uint32) uint32 {
	var sig uint32
	for _, v := range vals {
		sig = Misr(sig, v)
	}
	return sig
}
