// Package sbst contains the Software-Based Self-Test library: generators
// that produce the self-test routines the paper's experiments run — the
// exhaustive dual-issue forwarding-logic test (after Bernardi et al., "SBST
// techniques for dual-issue embedded processors" [19]), the hazard
// detection control unit test with performance counters, the synchronous
// imprecise-interrupt ICU test (after Singh et al. [21]) — plus the generic
// boot-time STL routines used as the parallel workload of Table I.
//
// Register conventions (shared with the wrapping strategies in
// internal/core):
//
//	r28        software MISR signature accumulator
//	r26, r27   MISR scratch
//	r29        routine data base pointer
//	r30        wrapper loop counter (routines must not touch)
//	r31        link register
//	r23..r25   interrupt handler scratch
//	r1..r22    routine operands
package sbst
