package coverage

import "math/bits"

// Feature indexes one microarchitectural event counter in a Map. The
// feature space is partitioned into groups (issue, forwarding, branches,
// memory, traps, bus, caches); Groups describes the partition for summary
// output.
type Feature uint16

// Pipeline issue and stall features (internal/cpu).
const (
	FeatIssue1    Feature = iota // packet issued (lane 0 occupied)
	FeatIssue2                   // second instruction joined the packet (dual issue)
	FeatStallIF                  // issue wanted, fetch could not supply
	FeatStallMem                 // pipeline held by an in-flight data access
	FeatStallHaz                 // load-use or width hazard stall
	FeatCascadeA                 // intra-packet cascade path, operand A
	FeatCascadeB                 // intra-packet cascade path, operand B
	FeatSplitWAW                 // dual issue refused: intra-packet WAW split
	FeatInterrupt                // ICU interrupt taken at issue
	FeatWedge                    // core wedged on an undecodable instruction

	featFwdBase // forwarding-path block, indexed by FwdFeat
)

// Forwarding-path geometry: 2 lanes x 2 operands x NumPaths selections.
const (
	NumFwdLanes    = 2
	NumFwdOperands = 2
	NumFwdPaths    = 6 // RF, EX/MEM lane0, EX/MEM lane1, MEM/WB lane0, MEM/WB lane1, cascade
)

// FwdFeat returns the feature for one forwarding-mux selection.
func FwdFeat(lane, operand, path uint8) Feature {
	return featFwdBase + Feature(int(lane)*NumFwdOperands*NumFwdPaths+int(operand)*NumFwdPaths+int(path))
}

// Control-flow, data-memory and trap features (internal/cpu).
const (
	FeatBranchTaken Feature = featFwdBase + NumFwdLanes*NumFwdOperands*NumFwdPaths + iota
	FeatBranchNotTaken
	FeatJump // unconditional J/JAL/JR/JALR/RFE redirect

	FeatLoadByte
	FeatLoadWord
	FeatLoadPair
	FeatStoreByte
	FeatStoreWord
	FeatStorePair

	FeatTrapOverflowAdd
	FeatTrapOverflowSub
	FeatTrapOverflowMul
	FeatTrapDivZero

	// Architectural interrupt features (internal/icu recognition states;
	// FeatInterrupt above counts the take itself at the issue boundary).

	FeatIntPendInHandler // event line latched while the handler was executing
	FeatIntMaskedPend    // matured recognition blocked by the enable mask
	FeatIntCauseMulti    // take latched more than one cause bit (merged recognition)
	FeatIntTailChain     // take within a few retirements of the previous RFE
	FeatIntReti          // return from exception executed

	// Bus arbitration and contention features (internal/bus).
	FeatBusGrantAlone // granted with no other master queued
	FeatBusGrantContend1
	FeatBusGrantContend2
	FeatBusGrantContend3 // three or more rivals queued behind the grant
	FeatBusRead
	FeatBusWrite
	FeatBusOpenBus   // access resolved to no mapped device
	FeatBusBurstSub  // burst shorter than a word
	FeatBusBurstWord // 4-byte burst
	FeatBusBurstWide // 8-byte burst
	FeatBusBurstLine // full line burst (cache refill / write-back)
	FeatBusCancel    // queued request retracted (fetch redirect)

	// Cross-core synchronisation features: accesses to the reserved barrier
	// flag line in the uncached SRAM alias (mem.BarrierFlagBase), observed
	// by the uncached data-side client. The scheduler's decentralized
	// completion protocol lives entirely in these three states.

	FeatBarrierPublish // flag-line write (a core publishing completion)
	FeatBarrierSpin    // flag-line read observed zero (peer still testing)
	FeatBarrierRelease // flag-line read observed a published flag

	// TCM staging features (internal/cache TCMClient): the copy-loop states
	// of the TCM-based wrapping strategy, which boots by staging code and
	// pattern data into the core-private memories.

	FeatTCMFetch     // instruction fetch served from the ITCM
	FeatTCMStageCode // data-side access to the ITCM (boot copy loop)
	FeatTCMDataRead  // DTCM data read
	FeatTCMDataWrite // DTCM data write

	featCacheBase // per-role cache block, indexed by CacheFeat
)

// Cache roles distinguish the instruction- and data-side private caches.
const (
	RoleICache = 0
	RoleDCache = 1
	NumRoles   = 2
)

// Cache events, per role (internal/cache).
const (
	CacheHit = iota
	CacheMiss
	CacheEvict       // clean line replaced
	CacheWriteback   // dirty line replaced
	CacheInvalidate  // whole-cache CINV
	CacheWriteAround // no-write-allocate write-through
	CacheColdMiss    // first miss after a CINV (chunk-boundary refill)
	NumCacheEvents
)

// CacheFeat returns the feature for one cache event on one role.
func CacheFeat(role, event int) Feature {
	return featCacheBase + Feature(role*NumCacheEvents+event)
}

// NumFeatures is the size of the feature space.
const NumFeatures = int(featCacheBase) + NumRoles*NumCacheEvents

// Map accumulates per-feature event counts for one run. A nil *Map is the
// disabled mode: Inc on nil is a no-op, so instrumented components carry a
// nil map by default and pay only the nil check.
type Map struct {
	counts [NumFeatures]uint32
}

// Inc bumps feature f by one. Safe (and free) on a nil receiver.
func (m *Map) Inc(f Feature) {
	if m == nil {
		return
	}
	m.counts[f]++
}

// Count returns the raw count of feature f.
func (m *Map) Count(f Feature) uint32 { return m.counts[f] }

// Reset clears every counter so the map can collect the next run.
func (m *Map) Reset() { m.counts = [NumFeatures]uint32{} }

// NumBuckets is the number of hit-count buckets each feature expands into
// when a Map is folded to Bits.
const NumBuckets = 8

// bucket maps a non-zero count onto its bucket index (AFL-style: exact
// small counts, then coarsening powers of two).
func bucket(c uint32) int {
	switch {
	case c == 1:
		return 0
	case c == 2:
		return 1
	case c == 3:
		return 2
	case c < 8:
		return 3
	case c < 16:
		return 4
	case c < 32:
		return 5
	case c < 128:
		return 6
	}
	return 7
}

// bitsWords is the size of the Bits backing array.
const bitsWords = (NumFeatures*NumBuckets + 63) / 64

// Bits is a run's coverage folded to a fixed bitset: each feature
// contributes one bit per occupied hit-count bucket, so "new coverage"
// means either a never-seen event or a never-seen order of magnitude of a
// known event. Bits values union cheaply, which is what the corpus loop
// needs.
type Bits struct {
	w [bitsWords]uint64
}

// Bits folds the map's counters into bucketed coverage bits.
func (m *Map) Bits() Bits {
	var b Bits
	for f, c := range m.counts {
		if c == 0 {
			continue
		}
		bit := f*NumBuckets + bucket(c)
		b.w[bit>>6] |= 1 << (bit & 63)
	}
	return b
}

// Or unions o into b and reports whether b gained any bit.
func (b *Bits) Or(o *Bits) (changed bool) {
	for i, w := range o.w {
		if w&^b.w[i] != 0 {
			changed = true
		}
		b.w[i] |= w
	}
	return changed
}

// Has reports whether any hit-count bucket of feature f is set — the
// per-feature reachability query pinned tests use ("did the guided loop
// ever light this event?").
func (b *Bits) Has(f Feature) bool {
	for k := 0; k < NumBuckets; k++ {
		bit := int(f)*NumBuckets + k
		if b.w[bit>>6]&(1<<(bit&63)) != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// Gain returns how many bits o would add to b — the non-mutating marginal
// value of o against accumulated coverage b. It is the steering query:
// among candidate fault sites (or programs), the one whose bits gain the
// most is the one worth exploring next.
func (b *Bits) Gain(o *Bits) int {
	n := 0
	for i, w := range o.w {
		n += bits.OnesCount64(w &^ b.w[i])
	}
	return n
}

// PickGreedy selects up to k of the candidate coverage sets by greedy
// marginal gain: each round picks the candidate adding the most bits to
// the union so far (lowest index on ties, so the choice is deterministic),
// until k are chosen or no candidate adds anything. It returns the chosen
// indices in pick order and the union of their bits — the steering
// primitive behind coverage-steered fault-site sampling.
func PickGreedy(cands []Bits, k int) ([]int, Bits) {
	var union Bits
	var picked []int
	taken := make([]bool, len(cands))
	for len(picked) < k {
		best, bestGain := -1, 0
		for i := range cands {
			if taken[i] {
				continue
			}
			if g := union.Gain(&cands[i]); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		picked = append(picked, best)
		union.Or(&cands[best])
	}
	return picked, union
}

// Group is one named slice of the feature space, for summary output.
type Group struct {
	Name string
	Lo   Feature // first feature in the group
	Hi   Feature // one past the last feature
}

// Groups returns the feature-space partition in index order.
func Groups() []Group {
	return []Group{
		{Name: "issue", Lo: FeatIssue1, Hi: featFwdBase},
		{Name: "forward", Lo: featFwdBase, Hi: FeatBranchTaken},
		{Name: "control", Lo: FeatBranchTaken, Hi: FeatLoadByte},
		{Name: "dmem", Lo: FeatLoadByte, Hi: FeatTrapOverflowAdd},
		{Name: "trap", Lo: FeatTrapOverflowAdd, Hi: FeatIntPendInHandler},
		{Name: "int", Lo: FeatIntPendInHandler, Hi: FeatBusGrantAlone},
		{Name: "bus", Lo: FeatBusGrantAlone, Hi: FeatBarrierPublish},
		{Name: "sync", Lo: FeatBarrierPublish, Hi: FeatTCMFetch},
		{Name: "tcm", Lo: FeatTCMFetch, Hi: featCacheBase},
		{Name: "cache", Lo: featCacheBase, Hi: Feature(NumFeatures)},
	}
}

// GroupCount is one group's coverage: Set of Total possible bits.
type GroupCount struct {
	Name  string
	Set   int
	Total int
}

// ByGroup breaks a bitset down by feature group.
func (b *Bits) ByGroup() []GroupCount {
	groups := Groups()
	out := make([]GroupCount, len(groups))
	for gi, g := range groups {
		out[gi] = GroupCount{Name: g.Name, Total: int(g.Hi-g.Lo) * NumBuckets}
		for f := g.Lo; f < g.Hi; f++ {
			for k := 0; k < NumBuckets; k++ {
				bit := int(f)*NumBuckets + k
				if b.w[bit>>6]&(1<<(bit&63)) != 0 {
					out[gi].Set++
				}
			}
		}
	}
	return out
}
