package coverage

import "testing"

// TestNilMapIsNoOp pins the zero-cost disabled mode: Inc on a nil map
// must be safe.
func TestNilMapIsNoOp(t *testing.T) {
	var m *Map
	m.Inc(FeatIssue1) // must not panic
}

// TestBucketedBits pins the fold: one feature occupies exactly one bucket
// bit per run, and different orders of magnitude land on different bits.
func TestBucketedBits(t *testing.T) {
	m := new(Map)
	m.Inc(FeatIssue2)
	one := m.Bits()
	if got := one.Count(); got != 1 {
		t.Fatalf("one event set %d bits, want 1", got)
	}
	for i := 0; i < 200; i++ {
		m.Inc(FeatIssue2)
	}
	many := m.Bits()
	if got := many.Count(); got != 1 {
		t.Fatalf("bucketed fold set %d bits, want 1", got)
	}
	var union Bits
	if !union.Or(&one) || !union.Or(&many) {
		t.Fatal("count-1 and count-201 runs should occupy different buckets")
	}
	if union.Count() != 2 {
		t.Fatalf("union has %d bits, want 2", union.Count())
	}
	if union.Or(&one) {
		t.Fatal("re-union reported new bits")
	}
}

// TestFeatureSpaceDisjoint pins that the derived feature indexers stay
// inside the map and never collide across groups.
func TestFeatureSpaceDisjoint(t *testing.T) {
	seen := map[Feature]bool{}
	mark := func(f Feature) {
		if int(f) >= NumFeatures {
			t.Fatalf("feature %d out of range %d", f, NumFeatures)
		}
		if seen[f] {
			t.Fatalf("feature %d assigned twice", f)
		}
		seen[f] = true
	}
	for lane := uint8(0); lane < NumFwdLanes; lane++ {
		for op := uint8(0); op < NumFwdOperands; op++ {
			for path := uint8(0); path < NumFwdPaths; path++ {
				mark(FwdFeat(lane, op, path))
			}
		}
	}
	for role := 0; role < NumRoles; role++ {
		for ev := 0; ev < NumCacheEvents; ev++ {
			mark(CacheFeat(role, ev))
		}
	}
	for _, f := range []Feature{
		FeatIssue1, FeatWedge, FeatBranchTaken, FeatStorePair,
		FeatTrapDivZero, FeatBusGrantAlone, FeatBusCancel,
	} {
		mark(f)
	}
	// Groups must tile the feature space exactly.
	next := Feature(0)
	for _, g := range Groups() {
		if g.Lo != next {
			t.Fatalf("group %s starts at %d, want %d", g.Name, g.Lo, next)
		}
		if g.Hi <= g.Lo {
			t.Fatalf("group %s is empty", g.Name)
		}
		next = g.Hi
	}
	if int(next) != NumFeatures {
		t.Fatalf("groups end at %d, want %d", next, NumFeatures)
	}
}
