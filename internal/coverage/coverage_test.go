package coverage

import "testing"

// TestNilMapIsNoOp pins the zero-cost disabled mode: Inc on a nil map
// must be safe.
func TestNilMapIsNoOp(t *testing.T) {
	var m *Map
	m.Inc(FeatIssue1) // must not panic
}

// TestBucketedBits pins the fold: one feature occupies exactly one bucket
// bit per run, and different orders of magnitude land on different bits.
func TestBucketedBits(t *testing.T) {
	m := new(Map)
	m.Inc(FeatIssue2)
	one := m.Bits()
	if got := one.Count(); got != 1 {
		t.Fatalf("one event set %d bits, want 1", got)
	}
	for i := 0; i < 200; i++ {
		m.Inc(FeatIssue2)
	}
	many := m.Bits()
	if got := many.Count(); got != 1 {
		t.Fatalf("bucketed fold set %d bits, want 1", got)
	}
	var union Bits
	if !union.Or(&one) || !union.Or(&many) {
		t.Fatal("count-1 and count-201 runs should occupy different buckets")
	}
	if union.Count() != 2 {
		t.Fatalf("union has %d bits, want 2", union.Count())
	}
	if union.Or(&one) {
		t.Fatal("re-union reported new bits")
	}
}

// TestGainAndPickGreedy pins the steering primitives: Gain is the
// non-mutating marginal-bit count, and PickGreedy chooses candidates by
// descending marginal gain with deterministic (lowest-index) tie-breaks.
func TestGainAndPickGreedy(t *testing.T) {
	fold := func(feats ...Feature) Bits {
		m := new(Map)
		for _, f := range feats {
			m.Inc(f)
		}
		return m.Bits()
	}
	a := fold(FeatIssue1, FeatIssue2)
	b := fold(FeatIssue2, FeatBranchTaken, FeatJump)
	c := fold(FeatJump)

	var acc Bits
	if got := acc.Gain(&a); got != 2 {
		t.Fatalf("Gain(a) from empty = %d, want 2", got)
	}
	acc.Or(&a)
	if got := acc.Gain(&b); got != 2 {
		t.Fatalf("Gain(b) after a = %d, want 2 (FeatIssue2 already seen)", got)
	}
	if got := acc.Count(); got != 2 {
		t.Fatal("Gain mutated the receiver")
	}

	// Greedy order: b first (3 bits), then a (1 new bit), c adds nothing.
	picked, union := PickGreedy([]Bits{a, b, c}, 3)
	if len(picked) != 2 || picked[0] != 1 || picked[1] != 0 {
		t.Fatalf("PickGreedy order = %v, want [1 0]", picked)
	}
	if got := union.Count(); got != 4 {
		t.Fatalf("union has %d bits, want 4", got)
	}

	// Tie-break: two identical candidates — lowest index wins, duplicate
	// adds nothing and is dropped.
	picked, _ = PickGreedy([]Bits{c, c}, 2)
	if len(picked) != 1 || picked[0] != 0 {
		t.Fatalf("tie-break pick = %v, want [0]", picked)
	}

	// k caps the selection even when more candidates would still gain.
	if picked, _ = PickGreedy([]Bits{a, b, c}, 1); len(picked) != 1 {
		t.Fatalf("k=1 picked %d candidates", len(picked))
	}
}

// TestFeatureSpaceDisjoint pins that the derived feature indexers stay
// inside the map and never collide across groups.
func TestFeatureSpaceDisjoint(t *testing.T) {
	seen := map[Feature]bool{}
	mark := func(f Feature) {
		if int(f) >= NumFeatures {
			t.Fatalf("feature %d out of range %d", f, NumFeatures)
		}
		if seen[f] {
			t.Fatalf("feature %d assigned twice", f)
		}
		seen[f] = true
	}
	for lane := uint8(0); lane < NumFwdLanes; lane++ {
		for op := uint8(0); op < NumFwdOperands; op++ {
			for path := uint8(0); path < NumFwdPaths; path++ {
				mark(FwdFeat(lane, op, path))
			}
		}
	}
	for role := 0; role < NumRoles; role++ {
		for ev := 0; ev < NumCacheEvents; ev++ {
			mark(CacheFeat(role, ev))
		}
	}
	for _, f := range []Feature{
		FeatIssue1, FeatWedge, FeatBranchTaken, FeatStorePair,
		FeatTrapDivZero, FeatBusGrantAlone, FeatBusCancel,
	} {
		mark(f)
	}
	// Groups must tile the feature space exactly.
	next := Feature(0)
	for _, g := range Groups() {
		if g.Lo != next {
			t.Fatalf("group %s starts at %d, want %d", g.Name, g.Lo, next)
		}
		if g.Hi <= g.Lo {
			t.Fatalf("group %s is empty", g.Name)
		}
		next = g.Hi
	}
	if int(next) != NumFeatures {
		t.Fatalf("groups end at %d, want %d", next, NumFeatures)
	}
}
