// Package coverage provides the cheap, allocation-free microarchitectural
// coverage counters that turn the conformance harness from a random
// sampler into a feedback fuzzer.
//
// A Map is a fixed array of event counters indexed by Feature: pipeline
// issue-slot occupancy and stall causes, forwarding/bypass-path
// selections, branch outcomes, data-memory access shapes, trap raises
// (internal/cpu), bus arbitration and contention states (internal/bus),
// and cache hit/miss/evict/writeback states (internal/cache). Instrumented
// components hold a *Map that is nil by default — Inc on a nil map is a
// no-op, so the disabled mode costs one predictable branch per event and
// nothing else. soc.SoC.SetCoverage attaches one map to every component of
// a system.
//
// After a run, Map.Bits folds the counters into a fixed bitset with
// AFL-style hit-count bucketing: each feature contributes one bit per
// occupied order-of-magnitude bucket, so a program that executes a known
// event a very different number of times still counts as new coverage.
// Bits values union cheaply (Or), which is exactly what the corpus loop in
// internal/conform needs: keep a program iff it lights a bit the corpus
// has not lit before.
package coverage
